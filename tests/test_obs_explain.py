"""Golden tests for ``repro explain`` on the paper's Table II platform.

The explanations are cross-checked against the analytic models: the
cited rate must be exactly the Algorithm 1 dominating-range rate for
the cited slot, and the cited positional cost must be exactly
``CB*(kb)`` from :meth:`~repro.core.dominating.DominatingRanges.cost`.
"""

import pytest

from repro.core.dominating import DominatingRanges
from repro.models.cost import CostModel
from repro.models.rates import TABLE_II
from repro.obs import (
    ExplainError,
    RecordingTracer,
    explain_task,
    run_traced_scenario,
    task_events,
)


@pytest.fixture(scope="module")
def wbg_trace():
    tracer = RecordingTracer()
    summary = run_traced_scenario("wbg", tracer, n_cores=2)
    return tracer.events, summary


@pytest.fixture(scope="module")
def lmc_trace():
    tracer = RecordingTracer()
    summary = run_traced_scenario("lmc", tracer, n_cores=2)
    return tracer.events, summary


class TestBatchGolden:
    def test_every_spec_task_is_explainable(self, wbg_trace):
        events, summary = wbg_trace
        ranges = DominatingRanges.from_cost_model(CostModel(TABLE_II, 0.1, 0.4))
        for name in summary["task_names"]:
            exp = explain_task(events, name)
            assert exp.mode == "batch"
            assert exp.core in (0, 1)
            # golden cross-check against Algorithm 1 on the Table II menu
            assert exp.rate == ranges.rate_for(exp.slot)
            assert exp.positional_cost == ranges.cost(exp.slot)
            lo_rate, lo, hi = exp.dominating_range
            assert lo_rate == exp.rate
            assert lo <= exp.slot and (hi is None or exp.slot < hi)

    def test_explains_by_id_and_by_name_identically(self, wbg_trace):
        events, summary = wbg_trace
        by_name = explain_task(events, summary["task_names"][0])
        by_id = explain_task(events, summary["task_ids"][0])
        assert by_name.core == by_id.core
        assert by_name.slot == by_id.slot
        assert by_name.rate == by_id.rate

    def test_runner_up_is_costlier_or_equal(self, wbg_trace):
        events, summary = wbg_trace
        for name in summary["task_names"]:
            exp = explain_task(events, name)
            ru = exp.runner_up
            assert ru is not None
            assert ru[2] >= exp.positional_cost

    def test_render_cites_the_paper(self, wbg_trace):
        events, summary = wbg_trace
        text = explain_task(events, summary["task_names"][0]).render()
        assert "Algorithm 1 dominating range" in text
        assert "Algorithm 3" in text
        assert "Re=0.1" in text and "Rt=0.4" in text
        assert "runner-up" in text

    def test_pricing_comes_from_ranges_event(self, wbg_trace):
        events, summary = wbg_trace
        exp = explain_task(events, summary["task_names"][3])
        assert exp.pricing == (0.1, 0.4)


class TestOnlineGolden:
    def test_interactive_cites_eq27_argmin(self, lmc_trace):
        events, _ = lmc_trace
        decision = next(e for e in events if e.kind == "lmc.interactive")
        exp = explain_task(events, decision.data["task_id"])
        assert exp.mode == "interactive"
        assert exp.core == decision.data["chosen"]
        assert exp.marginal_costs == list(decision.data["costs"])
        assert exp.marginal_costs[exp.core] == min(exp.marginal_costs)
        assert "Equation 27" in exp.render()
        # interactive tasks run at the core's maximum frequency
        assert exp.rate == max(TABLE_II.rates)

    def test_noninteractive_links_queue_insert(self, lmc_trace):
        events, _ = lmc_trace
        decision = next(e for e in events if e.kind == "lmc.noninteractive")
        exp = explain_task(events, decision.data["task_id"])
        assert exp.mode == "noninteractive"
        assert exp.slot is not None  # found its dynamic.insert
        ranges = DominatingRanges.from_cost_model(CostModel(TABLE_II, 0.4, 0.1))
        assert exp.rate == ranges.rate_for(exp.slot)

    def test_lifecycle_events_attached(self, lmc_trace):
        events, summary = lmc_trace
        exp = explain_task(events, summary["task_ids"][0])
        assert exp.dispatches, "expected at least one sim.dispatch"
        assert exp.completion is not None
        assert exp.completion["turnaround"] > 0

    def test_task_events_filters_by_task(self, lmc_trace):
        events, summary = lmc_trace
        tid = summary["task_ids"][0]
        mine = task_events(events, tid)
        assert mine
        assert all(e.data.get("task_id") == tid for e in mine)


class TestExplainErrors:
    def test_unknown_task_raises(self, wbg_trace):
        events, _ = wbg_trace
        with pytest.raises(ExplainError, match="no placement decision"):
            explain_task(events, "not-a-task")
        with pytest.raises(ExplainError):
            explain_task(events, -42)

    def test_empty_trace_raises(self):
        with pytest.raises(ExplainError):
            explain_task([], 0)
