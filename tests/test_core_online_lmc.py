"""Tests for the Least Marginal Cost policy object (Section IV)."""

import pytest

from repro.core.online_lmc import LeastMarginalCostPolicy
from repro.models.cost import CostModel
from repro.models.rates import TABLE_II, rate_table_from_power_law
from repro.models.task import Task


@pytest.fixture
def policy(online_model):
    return LeastMarginalCostPolicy([online_model] * 4)


class TestConstruction:
    def test_requires_cores(self):
        with pytest.raises(ValueError):
            LeastMarginalCostPolicy([])

    def test_requires_shared_pricing(self, online_model, table_ii):
        other = CostModel(table_ii, re=0.1, rt=0.1)
        with pytest.raises(ValueError, match="same Re and Rt"):
            LeastMarginalCostPolicy([online_model, other])


class TestInteractiveChoice:
    def test_homogeneous_reduces_to_least_delayed(self, policy):
        """Paper: 'if the cores are homogeneous, we simply choose the
        core with the least N_j'."""
        assert policy.choose_core_interactive(1.0, [3, 1, 2, 5]) == 1
        assert policy.choose_core_interactive(1.0, [0, 0, 0, 0]) == 0  # tie → lowest

    def test_heterogeneous_prefers_cheap_fast_core(self, online_model):
        expensive = CostModel(TABLE_II, 0.4, 0.1)
        cheap_table = rate_table_from_power_law(
            [1.0, 3.0], dynamic_coefficient=0.1, name="efficient"
        )
        cheap = CostModel(cheap_table, 0.4, 0.1)
        p = LeastMarginalCostPolicy([expensive, cheap])
        # same queue lengths: the energy-efficient core wins Eq. 27
        assert p.choose_core_interactive(10.0, [0, 0]) == 1

    def test_wrong_count_rejected(self, policy):
        with pytest.raises(ValueError):
            policy.choose_core_interactive(1.0, [0, 0])


class TestNonInteractiveChoice:
    def test_balances_queues(self, policy):
        # fill core 0's queue; a new task should go elsewhere
        for _ in range(5):
            policy.enqueue(0, 50.0)
        assert policy.choose_core_noninteractive(50.0) != 0

    def test_empty_cores_tie_to_lowest_index(self, policy):
        assert policy.choose_core_noninteractive(10.0) == 0

    def test_marginal_choice_is_actually_cheapest(self, policy):
        for core, loads in enumerate([(10.0, 20.0), (100.0,), (), (5.0, 5.0, 5.0)]):
            for L in loads:
                policy.enqueue(core, L)
        probe = 42.0
        chosen = policy.choose_core_noninteractive(probe)
        costs = [policy.queues[j].marginal_insert_cost(probe) for j in range(4)]
        assert costs[chosen] == pytest.approx(min(costs))


class TestQueueMechanics:
    def test_pop_head_is_shortest_with_positional_rate(self, policy):
        for L in (30.0, 10.0, 20.0):
            policy.enqueue(1, L, payload=f"t{L}")
        payload, cycles, rate = policy.pop_head(1)
        assert cycles == 10.0
        assert payload == "t10.0"
        # three tasks were queued: the head sat at backward position 3
        assert rate == policy.ranges[1].rate_for(3)
        assert policy.waiting_count(1) == 2

    def test_pop_empty_returns_none(self, policy):
        assert policy.pop_head(2) is None

    def test_remove_cancels_queued_task(self, policy):
        node = policy.enqueue(0, 15.0)
        policy.enqueue(0, 25.0)
        policy.remove(0, node)
        assert policy.waiting_count(0) == 1
        payload, cycles, _ = policy.pop_head(0)
        assert cycles == 25.0

    def test_running_rate_tracks_queue_depth(self, policy, online_model):
        # empty queue → running task is backward position 1
        assert policy.running_rate(0) == policy.ranges[0].rate_for(1)
        for i in range(40):
            policy.enqueue(0, float(i + 1))
        assert policy.running_rate(0) == policy.ranges[0].rate_for(41)

    def test_interactive_rate_is_max(self, policy):
        assert policy.interactive_rate(0) == TABLE_II.max_rate

    def test_head_delays_bias_away_from_busy_core(self, policy):
        # identical (empty) queues: a large head delay on core 0 diverts
        assert policy.choose_core_noninteractive(10.0, [50.0, 0.0, 0.0, 0.0]) == 1
        # without head delays the tie goes to core 0
        assert policy.choose_core_noninteractive(10.0) == 0

    def test_head_delays_length_validated(self, policy):
        with pytest.raises(ValueError, match="one entry per core"):
            policy.choose_core_noninteractive(10.0, [1.0])

    def test_scheduler_cancel_withdraws_task(self, online_model):
        from repro.models.rates import TABLE_II as T2
        from repro.models.task import Task, TaskKind
        from repro.schedulers import LMCOnlineScheduler

        sched = LMCOnlineScheduler(T2, 2, 0.4, 0.1)
        t = Task(cycles=12.0, kind=TaskKind.NONINTERACTIVE)
        sched.enqueue_noninteractive(0, t)
        assert sched.policy.waiting_count(0) == 1
        sched.cancel(t)
        assert sched.policy.waiting_count(0) == 0
        with pytest.raises(KeyError):
            sched.cancel(t)  # already withdrawn

    def test_queued_cost_aggregates(self, policy):
        assert policy.total_queued_cost() == 0.0
        policy.enqueue(0, 10.0)
        policy.enqueue(3, 20.0)
        assert policy.total_queued_cost() == pytest.approx(
            policy.queued_cost(0) + policy.queued_cost(3)
        )
        assert policy.queued_cost(1) == 0.0
