"""Cache-correctness tests for the perf kernel layer.

The perf layer (docs/PERFORMANCE.md) adds three memos — the process-wide
Algorithm 1 LRU, the per-ranges vectorized positional prefixes, and the
per-index marginal-probe memo — plus vectorized kernels that replace
scalar loops. None of them may change any observable result:

* churn through ``DynamicCostIndex`` with the probe memo enabled must
  match a fresh solver built from the surviving values;
* a real insert/delete must invalidate the probe memo (the
  invalidation-miss regression tests plant a poisoned memo entry and
  prove a mutation flushes it, while a pure probe does not);
* the LRU must hit on equal keys, miss on different ones, and evict
  beyond capacity without ever returning a wrong table;
* every vectorized kernel must reproduce its scalar counterpart
  bit-for-bit where it feeds decisions.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.batch_multi import WorkloadBasedGreedy
from repro.core.dominating import (
    DominatingRanges,
    dominating_cache_stats,
    invalidate_dominating_cache,
)
from repro.core.dynamic import DynamicCostIndex
from repro.models.cost import CostModel
from repro.models.rates import TABLE_II, RateTable
from repro.models.task import Task
from repro.models.tolerances import AGG_ABS_TOL, REL_TOL
from repro.models.vectorized import (
    interactive_marginal_batch,
    positional_cost_prefix,
    positional_rate_prefix,
    wbg_slot_sequence,
)


def _model(re: float = 0.1, rt: float = 0.4) -> CostModel:
    return CostModel(TABLE_II, re, rt)


def _agg_close(a: float, b: float, scale: float) -> bool:
    return abs(a - b) <= max(AGG_ABS_TOL, REL_TOL * max(abs(a), abs(b), scale))


# ---------------------------------------------------------------------------
# memoized churn vs fresh solver
# ---------------------------------------------------------------------------


def test_dynamic_churn_with_memo_matches_fresh_solver() -> None:
    rng = random.Random(314)
    memoized = DynamicCostIndex(_model(), seed=5)
    live: list = []
    probe_menu = (0.5, 2.0, 7.5)

    for step in range(400):
        if rng.random() < 0.6 or not live:
            value = rng.uniform(0.1, 40.0)
            live.append((memoized.insert(value), value))
        else:
            node, _ = live.pop(rng.randrange(len(live)))
            memoized.delete(node)
        for cycles in probe_menu:  # repeated probes exercise the memo
            memoized.marginal_insert_cost(cycles)

        if step % 50 == 0 or step == 399:
            fresh = DynamicCostIndex(_model(), seed=5)
            for _, value in live:
                fresh.insert(value)
            assert len(memoized) == len(fresh)
            # identical plan: same sorted values, same per-position rates
            assert memoized.tree.values() == fresh.tree.values()
            n = len(fresh)
            for k in (1, max(1, n // 2), n) if n else ():
                assert memoized.rate_of(memoized.tree.select(k)) == fresh.rate_of(
                    fresh.tree.select(k)
                )
            assert _agg_close(
                memoized.total_cost, fresh.total_cost, memoized.total_cost
            )
            for cycles in probe_menu:
                assert _agg_close(
                    memoized.marginal_insert_cost(cycles),
                    fresh.marginal_insert_cost(cycles),
                    memoized.total_cost,
                )
    assert memoized.counters["probe_memo_hits"] > 0


def test_repeated_probe_is_bit_identical_memo_hit() -> None:
    index = DynamicCostIndex(_model())
    for value in (3.0, 11.0, 0.7, 25.0):
        index.insert(value)
    first = index.marginal_insert_cost(4.2)
    hits = index.counters["probe_memo_hits"]
    again = index.marginal_insert_cost(4.2)
    assert again == first  # == on purpose: a hit returns the stored float
    assert index.counters["probe_memo_hits"] == hits + 1


def test_probe_does_not_mutate_or_invalidate() -> None:
    index = DynamicCostIndex(_model())
    nodes = [index.insert(v) for v in (5.0, 1.5, 9.0)]
    total = index.total_cost
    version = index.version
    index.marginal_insert_cost(2.0)
    assert index.total_cost == total
    assert len(index) == 3
    assert index.version == version  # the probe's insert+delete nets out
    assert index.counters["inserts"] == 3  # probes not counted as mutations
    assert index.counters["deletes"] == 0
    index.delete(nodes[0])
    assert index.counters["deletes"] == 1


# ---------------------------------------------------------------------------
# invalidation-miss regression tests
# ---------------------------------------------------------------------------


def test_insert_invalidates_probe_memo() -> None:
    """Regression: a real insert must flush memoized marginals.

    Plants a poisoned memo entry, proves a pure probe would have served
    it, then shows the mutation clears it and the next probe recomputes
    the true marginal. If the invalidation call in ``insert`` is ever
    lost, the poisoned value comes back and this test fails.
    """
    index = DynamicCostIndex(_model())
    index.insert(10.0)
    true_before = index.marginal_insert_cost(3.0)
    poison = -12345.0
    index._probe_memo[3.0] = poison
    assert index.marginal_insert_cost(3.0) == poison  # memo is really consulted

    index.insert(20.0)  # real mutation → must invalidate
    after = index.marginal_insert_cost(3.0)
    assert after != poison
    assert after != true_before  # queue grew, the marginal genuinely changed
    assert math.isfinite(after)


def test_delete_invalidates_probe_memo() -> None:
    index = DynamicCostIndex(_model())
    node = index.insert(10.0)
    index.insert(4.0)
    index.marginal_insert_cost(3.0)
    poison = -999.0
    index._probe_memo[3.0] = poison
    index.delete(node)
    assert index.marginal_insert_cost(3.0) != poison


def test_explicit_invalidate_probe_memo_bumps_version() -> None:
    index = DynamicCostIndex(_model())
    index.insert(2.0)
    index.marginal_insert_cost(1.0)
    version = index.version
    index.invalidate_probe_memo()
    assert index.version == version + 1
    hits = index.counters["probe_memo_hits"]
    index.marginal_insert_cost(1.0)
    assert index.counters["probe_memo_hits"] == hits  # recomputed, not served


# ---------------------------------------------------------------------------
# the Algorithm 1 LRU
# ---------------------------------------------------------------------------


def test_ranges_cache_hits_on_equal_key_misses_on_distinct() -> None:
    invalidate_dominating_cache()
    base = dominating_cache_stats()
    a = DominatingRanges.cached(_model(0.3, 0.7))
    b = DominatingRanges.cached(_model(0.3, 0.7))  # distinct CostModel, same key
    c = DominatingRanges.cached(_model(0.3, 0.8))
    stats = dominating_cache_stats()
    assert a is b
    assert c is not a
    assert stats["hits"] - base["hits"] == 1
    assert stats["misses"] - base["misses"] == 2


def test_ranges_cache_invalidate_single_entry() -> None:
    invalidate_dominating_cache()
    model = _model(0.2, 0.9)
    first = DominatingRanges.cached(model)
    assert invalidate_dominating_cache(model) == 1
    assert invalidate_dominating_cache(model) == 0  # already gone
    second = DominatingRanges.cached(model)
    assert second is not first
    assert [(r.rate, r.lo, r.hi) for r in second] == [
        (r.rate, r.lo, r.hi) for r in first
    ]


def test_ranges_cache_eviction_never_corrupts_results() -> None:
    """Push far past capacity; every lookup must still be correct."""
    invalidate_dominating_cache()
    capacity = dominating_cache_stats()["capacity"]
    pricings = [(0.01 * (i + 1), 0.4) for i in range(capacity + 40)]
    for re, rt in pricings:
        model = _model(re, rt)
        cached = DominatingRanges.cached(model)
        fresh = DominatingRanges.from_cost_model(model)
        assert [(r.rate, r.lo, r.hi) for r in cached] == [
            (r.rate, r.lo, r.hi) for r in fresh
        ]
    stats = dominating_cache_stats()
    assert stats["entries"] <= capacity
    assert stats["evictions"] >= 40


# ---------------------------------------------------------------------------
# vectorized kernels vs scalar counterparts (bit-identity)
# ---------------------------------------------------------------------------


def test_positional_prefix_bit_identical_to_scalar_costs() -> None:
    ranges = DominatingRanges.cached(_model())
    costs = positional_cost_prefix(ranges, 300)
    rates = positional_rate_prefix(ranges, 300)
    for k in range(1, 301):
        assert costs[k - 1] == ranges.cost(k)
        assert rates[k - 1] == ranges.rate_for(k)
    with pytest.raises(ValueError):
        costs[0] = 0.0  # memoized prefixes are read-only views


def test_positional_prefix_grows_monotonically() -> None:
    ranges = DominatingRanges.cached(_model(0.15, 0.35))
    short = positional_cost_prefix(ranges, 4)
    longer = positional_cost_prefix(ranges, 64)
    assert list(longer[:4]) == list(short)
    assert positional_cost_prefix(ranges, 64).base is positional_cost_prefix(ranges, 8).base


def test_wbg_slot_sequence_matches_scalar_heap() -> None:
    rng = random.Random(2718)
    tables = [
        RateTable(
            TABLE_II.rates,
            tuple(e * f for e in TABLE_II.energy_per_cycle),
            TABLE_II.time_per_cycle,
        )
        for f in (1.0, 1.2, 1.45)
    ]
    models = [CostModel(t, 0.1, 0.4) for t in tables]
    tasks = [Task(cycles=rng.uniform(0.1, 20.0)) for _ in range(200)]
    wbg = WorkloadBasedGreedy(models)
    scalar = wbg.schedule(tasks, kernel="scalar")
    vector = wbg.schedule(tasks, kernel="vector")
    assert [
        [(p.task.task_id, p.rate) for p in s.placements] for s in scalar
    ] == [[(p.task.task_id, p.rate) for p in s.placements] for s in vector]


def test_wbg_kernel_argument_validated() -> None:
    wbg = WorkloadBasedGreedy([_model()])
    with pytest.raises(ValueError):
        wbg.schedule([Task(cycles=1.0)], kernel="bogus")


def test_interactive_marginal_batch_bit_identical_to_scalar() -> None:
    rng = random.Random(161803)
    for _ in range(50):
        re, rt = rng.uniform(0.05, 2.0), rng.uniform(0.05, 2.0)
        factors = [rng.uniform(1.0, 1.6) for _ in range(4)]
        models = [
            CostModel(
                RateTable(
                    TABLE_II.rates,
                    tuple(e * f for e in TABLE_II.energy_per_cycle),
                    TABLE_II.time_per_cycle,
                ),
                re,
                rt,
            )
            for f in factors
        ]
        cycles = rng.uniform(0.01, 50.0)
        counts = [rng.randint(0, 9) for _ in models]
        pm_energy = np.array(
            [m.table.energy(m.table.max_rate) for m in models], dtype=np.float64
        )
        pm_time = np.array(
            [m.table.time(m.table.max_rate) for m in models], dtype=np.float64
        )
        batch = interactive_marginal_batch(
            re, rt, cycles, pm_energy, pm_time, np.asarray(counts, dtype=np.float64)
        )
        scalar = [m.interactive_marginal_cost(cycles, n) for m, n in zip(models, counts)]
        assert batch.tolist() == scalar
        assert int(batch.argmin()) == min(
            range(len(models)), key=scalar.__getitem__
        )


def test_wbg_use_cache_false_matches_cached_scheduler() -> None:
    rng = random.Random(55)
    models = [_model(), _model()]
    tasks = [Task(cycles=rng.uniform(0.5, 12.0)) for _ in range(40)]
    cached = WorkloadBasedGreedy(models, use_cache=True)
    fresh = WorkloadBasedGreedy(models, use_cache=False)
    assert cached.ranges[0] is cached.ranges[1]  # shared via the LRU
    assert fresh.ranges[0] is not cached.ranges[0]
    plan_a = cached.schedule(tasks)
    plan_b = fresh.schedule(tasks)
    assert [
        [(p.task.task_id, p.rate) for p in s.placements] for s in plan_a
    ] == [[(p.task.task_id, p.rate) for p in s.placements] for s in plan_b]
    assert cached.optimal_cost(tasks, kernel="scalar") == fresh.optimal_cost(
        tasks, kernel="scalar"
    )
