"""Online mode on heterogeneous platforms + open-loop workloads.

Section IV assumption (1): "The system can be a homogeneous or a
heterogeneous multi-core system." These tests exercise the
heterogeneous paths of LMC and the runner, and the neutral open-loop
trace generator.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.cost import CostModel
from repro.models.rates import TABLE_II, rate_table_from_power_law
from repro.models.task import Task, TaskKind
from repro.schedulers import LMCOnlineScheduler, OLBOnlineScheduler
from repro.simulator import run_online
from repro.workloads import generate_open_loop_trace
from repro.workloads.trace import trace_summary

LITTLE = rate_table_from_power_law(
    [0.6, 0.9, 1.2, 1.5], dynamic_coefficient=0.25, name="little"
)


def het_tables():
    return [TABLE_II, TABLE_II, LITTLE, LITTLE]


class TestOpenLoopTrace:
    def test_counts_and_window(self):
        trace = generate_open_loop_trace(120.0, interactive_per_s=2.0,
                                         noninteractive_per_s=0.5, seed=4)
        s = trace_summary(trace)
        # Poisson counts near rate × duration
        assert 160 < s.n_interactive < 320
        assert 30 < s.n_noninteractive < 95
        assert all(0 <= t.arrival < 120.0 for t in trace)

    def test_sorted_and_deterministic(self):
        a = generate_open_loop_trace(60.0, 1.0, 0.2, seed=9)
        b = generate_open_loop_trace(60.0, 1.0, 0.2, seed=9)
        assert [(t.arrival, t.cycles) for t in a] == [(t.arrival, t.cycles) for t in b]
        arrivals = [t.arrival for t in a]
        assert arrivals == sorted(arrivals)

    def test_zero_rates(self):
        assert generate_open_loop_trace(60.0, 0.0, 0.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_open_loop_trace(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            generate_open_loop_trace(60.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            generate_open_loop_trace(60.0, 1.0, 1.0, noninteractive_median=0.0)


class TestHeterogeneousLMC:
    def test_rates_stay_within_each_cores_menu(self):
        trace = generate_open_loop_trace(60.0, 1.0, 0.8, seed=2)
        tables = het_tables()
        lmc = LMCOnlineScheduler(tables, 4, 0.4, 0.1)
        res = run_online(trace, lmc, tables)
        assert len(res.records) == len(trace)
        for rec in res.records:
            table = tables[rec.core]
            # energy per cycle bounded by this core's own menu extremes
            emin = table.energy(table.min_rate)
            emax = table.energy(table.max_rate)
            per_cycle = rec.energy_joules / rec.task.cycles
            assert emin - 1e-9 <= per_cycle <= emax + 1e-9

    def test_interactive_prefers_fast_cheap_core(self):
        # an interactive task on an idle heterogeneous platform goes to the
        # core with the lowest Eq. 27 value (compare big vs little directly)
        tables = het_tables()
        lmc = LMCOnlineScheduler(tables, 4, 0.4, 0.1)
        trace = [Task(cycles=0.01, arrival=0.0, kind=TaskKind.INTERACTIVE)]
        res = run_online(trace, lmc, tables)
        big = CostModel(TABLE_II, 0.4, 0.1).interactive_marginal_cost(0.01, 0)
        little = CostModel(LITTLE, 0.4, 0.1).interactive_marginal_cost(0.01, 0)
        expected_family = {0, 1} if big < little else {2, 3}
        assert res.records[0].core in expected_family

    def test_olb_heterogeneous_ready_times(self):
        tables = het_tables()
        olb = OLBOnlineScheduler(tables, 4)
        trace = [Task(cycles=30.0, arrival=0.0, kind=TaskKind.NONINTERACTIVE)]
        res = run_online(trace, olb, tables)
        # OLB estimates ready time at each core's own max rate; an idle big
        # core and an idle little core tie at zero → lowest index wins
        assert res.records[0].core == 0

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10**6))
    def test_heterogeneous_runs_complete(self, seed):
        trace = generate_open_loop_trace(30.0, 2.0, 0.6, seed=seed)
        tables = het_tables()
        lmc = LMCOnlineScheduler(tables, 4, 0.4, 0.1)
        res = run_online(trace, lmc, tables)
        assert len(res.records) == len(trace)
        for rec in res.records:
            assert rec.finish >= rec.first_start >= rec.task.arrival


class TestHeterogeneousBeatsMismatchedHomogeneous:
    def test_lmc_het_beats_little_only(self):
        """Adding big cores to a little platform must not hurt."""
        trace = generate_open_loop_trace(60.0, 1.0, 1.2, seed=8)
        het = run_online(
            trace, LMCOnlineScheduler(het_tables(), 4, 0.4, 0.1), het_tables()
        ).cost(0.4, 0.1)
        little_only = run_online(
            trace, LMCOnlineScheduler([LITTLE] * 2, 2, 0.4, 0.1), [LITTLE] * 2
        ).cost(0.4, 0.1)
        assert het.total_cost < little_only.total_cost
