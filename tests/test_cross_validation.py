"""Cross-validation between independent subsystems.

The batch path (Algorithm 2/3 + batch runner) and the online path (LMC
+ event-driven runner) implement the same cost theory through entirely
different code. Where their domains overlap, they must agree — these
tests exploit the overlap as an end-to-end oracle neither side can
game.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch_multi import WorkloadBasedGreedy
from repro.models.cost import CostModel
from repro.models.rates import TABLE_II
from repro.models.task import Task, TaskKind
from repro.schedulers import LMCOnlineScheduler
from repro.simulator import run_online


def burst_trace(cycles_list):
    """All tasks arrive (effectively) simultaneously at t = 0."""
    return [
        Task(cycles=c, arrival=0.0, kind=TaskKind.NONINTERACTIVE, name=f"t{i}")
        for i, c in enumerate(cycles_list)
    ]


class TestOnlineApproachesBatchOptimum:
    """A time-0 burst is exactly the batch problem; LMC (which never
    migrates and must start serving before the whole burst is known)
    should land close to the WBG optimum, and never below it."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(0.5, 300.0), min_size=1, max_size=25),
        st.integers(1, 4),
    )
    def test_lmc_burst_within_25_percent_of_wbg(self, cycles, n_cores):
        model = CostModel(TABLE_II, 0.4, 0.1)
        wbg = WorkloadBasedGreedy([model] * n_cores)
        optimal = wbg.optimal_cost([Task(cycles=c) for c in cycles])

        res = run_online(
            burst_trace(cycles),
            LMCOnlineScheduler(TABLE_II, n_cores, 0.4, 0.1),
            TABLE_II,
        )
        online_cost = res.cost(0.4, 0.1).total_cost
        assert online_cost >= optimal - 1e-6 * max(1.0, optimal)
        assert online_cost <= 1.25 * optimal + 1e-9

    def test_single_task_burst_exactly_optimal(self):
        model = CostModel(TABLE_II, 0.4, 0.1)
        res = run_online(
            burst_trace([42.0]), LMCOnlineScheduler(TABLE_II, 1, 0.4, 0.1), TABLE_II
        )
        # one task: both paths run it alone at CB* position 1's rate
        expected = model.backward_position_cost(1, 1.6) * 42.0
        assert res.cost(0.4, 0.1).total_cost == pytest.approx(expected, rel=1e-9)

    def test_large_burst_converges_tightly(self):
        """With many tasks the head-start distortion amortises away."""
        cycles = [float(1 + (i * 37) % 200) for i in range(120)]
        model = CostModel(TABLE_II, 0.4, 0.1)
        wbg = WorkloadBasedGreedy([model] * 4)
        optimal = wbg.optimal_cost([Task(cycles=c) for c in cycles])
        res = run_online(
            burst_trace(cycles), LMCOnlineScheduler(TABLE_II, 4, 0.4, 0.1), TABLE_II
        )
        assert res.cost(0.4, 0.1).total_cost <= 1.05 * optimal


class TestQueueIndexIntegrityAfterRuns:
    """After a full online run, LMC's internal indices must be empty and
    structurally sound — every inserted task was popped exactly once."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_indices_drain_clean(self, seed):
        from repro.workloads import JudgeTraceConfig, generate_judge_trace

        cfg = JudgeTraceConfig(
            n_interactive=150, n_noninteractive=40, duration_s=60.0, seed=seed
        )
        lmc = LMCOnlineScheduler(TABLE_II, 3, 0.4, 0.1)
        run_online(generate_judge_trace(cfg), lmc, TABLE_II)
        for q in lmc.policy.queues:
            assert len(q) == 0
            assert q.total_cost == pytest.approx(0.0, abs=1e-6)
            q.check_invariants()
        assert lmc._handles == {}, "no queued handles should survive the run"


class TestVectorizedAgreesWithSimulator:
    """Third leg: the NumPy fast path equals the event-driven measurement."""

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(0.5, 200.0), min_size=1, max_size=15))
    def test_three_way_agreement(self, cycles):
        from repro.models.vectorized import optimal_cost_vectorized
        from repro.schedulers import wbg_plan
        from repro.simulator import run_batch

        model = CostModel(TABLE_II, 0.1, 0.4)
        tasks = [Task(cycles=c) for c in cycles]
        plan = wbg_plan(tasks, TABLE_II, 1, 0.1, 0.4)
        simulated = run_batch(plan, TABLE_II).cost(0.1, 0.4).total_cost
        analytic = model.schedule_cost(plan).total_cost
        vectorised = optimal_cost_vectorized(model, cycles)
        assert simulated == pytest.approx(analytic, rel=1e-9)
        assert vectorised == pytest.approx(analytic, rel=1e-9)
