"""Tests: vectorised evaluators agree with the scalar reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from conftest import cost_models, cycle_lists
from repro.core.batch_single import schedule_cost_lower_bound, schedule_single_core
from repro.core.dominating import DominatingRanges
from repro.models.cost import CoreSchedule, CostModel, Placement
from repro.models.rates import TABLE_II
from repro.models.task import Task
from repro.models.vectorized import (
    core_cost_vectorized,
    optimal_cost_vectorized,
    positional_cost_table,
)


class TestCoreCostVectorized:
    @settings(max_examples=50, deadline=None)
    @given(cost_models(min_rates=1, max_rates=6), cycle_lists(0, 25), st.integers(0, 10**6))
    def test_matches_scalar(self, model, cycles, seed):
        import random

        rng = random.Random(seed)
        sched = CoreSchedule(
            Placement(task=Task(cycles=c), rate=rng.choice(model.table.rates))
            for c in cycles
        )
        scalar = model.core_cost(sched).total_cost
        vector = core_cost_vectorized(model, sched)
        assert vector == pytest.approx(scalar, rel=1e-9, abs=1e-9)

    def test_empty(self, batch_model):
        assert core_cost_vectorized(batch_model, CoreSchedule([])) == 0.0

    def test_large_batch(self, batch_model):
        import random

        rng = random.Random(3)
        sched = CoreSchedule(
            Placement(task=Task(cycles=rng.uniform(0.1, 100)), rate=rng.choice(TABLE_II.rates))
            for _ in range(5000)
        )
        assert core_cost_vectorized(batch_model, sched) == pytest.approx(
            batch_model.core_cost(sched).total_cost, rel=1e-9
        )


class TestOptimalCostVectorized:
    @settings(max_examples=50, deadline=None)
    @given(cost_models(min_rates=1, max_rates=6), cycle_lists(0, 25))
    def test_matches_lower_bound(self, model, cycles):
        tasks = [Task(cycles=c) for c in cycles]
        scalar = schedule_cost_lower_bound(tasks, model)
        vector = optimal_cost_vectorized(model, cycles)
        assert vector == pytest.approx(scalar, rel=1e-9, abs=1e-9)

    def test_matches_algorithm_2(self, batch_model):
        cycles = [float(c * 7 % 97 + 1) for c in range(200)]
        tasks = [Task(cycles=c) for c in cycles]
        sched = schedule_single_core(tasks, batch_model)
        achieved = batch_model.core_cost(sched).total_cost
        assert optimal_cost_vectorized(batch_model, cycles) == pytest.approx(
            achieved, rel=1e-9
        )

    def test_rejects_nonpositive(self, batch_model):
        with pytest.raises(ValueError):
            optimal_cost_vectorized(batch_model, [1.0, 0.0])

    def test_accepts_numpy_input(self, batch_model):
        arr = np.array([5.0, 2.0, 9.0])
        tasks = [Task(cycles=float(c)) for c in arr]
        assert optimal_cost_vectorized(batch_model, arr) == pytest.approx(
            schedule_cost_lower_bound(tasks, batch_model)
        )

    def test_reusable_ranges(self, batch_model):
        dr = DominatingRanges.from_cost_model(batch_model)
        a = optimal_cost_vectorized(batch_model, [3.0, 1.0], ranges=dr)
        b = optimal_cost_vectorized(batch_model, [3.0, 1.0])
        assert a == pytest.approx(b)


class TestPositionalTable:
    @settings(max_examples=40, deadline=None)
    @given(cost_models(min_rates=1, max_rates=6), st.integers(1, 300))
    def test_matches_best_backward_cost(self, model, n):
        table = positional_cost_table(model, n)
        assert table.shape == (n,)
        for kb in {1, n, max(1, n // 2)}:
            assert table[kb - 1] == pytest.approx(
                model.best_backward_cost(kb), rel=1e-9
            )

    def test_monotone_increasing(self, batch_model):
        table = positional_cost_table(batch_model, 100)
        assert np.all(np.diff(table) > 0)

    def test_validation(self, batch_model):
        with pytest.raises(ValueError):
            positional_cost_table(batch_model, 0)
